package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/persist"
	"hoop/internal/pmem"
	"hoop/internal/sim"
	"hoop/internal/structures"
)

// testConfig shrinks the machine so tests run fast: 4 cores / 4 threads,
// a 64 MB OOP region, and frequent GC.
func testConfig(scheme string) engine.Config {
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores = 4
	cfg.Threads = 4
	cfg.Cache.Cores = 4
	cfg.Ctrl.Agents = cfg.Cores + 2
	cfg.NVM.Capacity = 4 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.Hoop.GCPeriod = 500 * sim.Microsecond
	cfg.LSM.GCPeriod = 500 * sim.Microsecond
	cfg.TrackOracle = true
	return cfg
}

// mapRunner drives random Put/Get transactions against a per-thread
// persistent hashmap.
type mapRunner struct {
	h   *structures.HashMap
	rng *sim.Rand
	buf []byte
}

func newMapRunners(t *testing.T, sys *engine.System, valBytes int) []engine.TxRunner {
	t.Helper()
	threads := sys.Config().Threads
	regions := pmem.Partition(sys.Layout().Home, threads)
	runners := make([]engine.TxRunner, threads)
	for i := 0; i < threads; i++ {
		env := sys.NewEnv(i)
		arena := pmem.NewArena(env, regions[i])
		env.TxBegin()
		arena.Init()
		h := structures.NewHashMap(env, arena, 64, valBytes)
		env.TxEnd()
		r := &mapRunner{h: h, rng: sim.NewRand(uint64(i) + 1), buf: make([]byte, valBytes)}
		runners[i] = r
	}
	return runners
}

func (r *mapRunner) RunTx(env *engine.Env) {
	env.TxBegin()
	key := uint64(r.rng.Intn(200))
	for i := range r.buf {
		r.buf[i] = byte(r.rng.Uint64())
	}
	r.h.Put(key, r.buf)
	if r.rng.Bool(0.3) {
		r.h.Get(uint64(r.rng.Intn(200)), r.buf)
	}
	env.TxEnd()
}

func TestAllSchemesRunAndStaySane(t *testing.T) {
	for _, scheme := range engine.AllSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			sys, err := engine.New(testConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			runners := newMapRunners(t, sys, 64)
			sys.Run(runners, 400)
			snap := sys.Snapshot()
			if snap.Txs < 400 {
				t.Fatalf("committed %d txs, want >= 400", snap.Txs)
			}
			if sys.MaxClock() <= 0 {
				t.Fatal("simulated time did not advance")
			}
			if snap.AvgTxLatency() <= 0 {
				t.Fatal("transaction latency not measured")
			}
			if snap.Loads == 0 || snap.Stores == 0 {
				t.Fatalf("ops not counted: loads=%d stores=%d", snap.Loads, snap.Stores)
			}
			if scheme != engine.SchemeNative {
				if sys.Stats().Get(sim.StatNVMBytesWritten) == 0 {
					t.Fatal("persistence scheme wrote no NVM bytes")
				}
			}
		})
	}
}

func TestCrashRecoveryMatchesOracle(t *testing.T) {
	for _, scheme := range engine.AllSchemes {
		if scheme == engine.SchemeNative {
			continue // no persistence guarantee to verify
		}
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			sys, err := engine.New(testConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			runners := newMapRunners(t, sys, 64)
			sys.Run(runners, 600)
			sys.Crash()
			if _, err := sys.Recover(4); err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if mm := sys.VerifyRecovered(5); len(mm) != 0 {
				t.Fatalf("recovered state diverges from committed oracle: %+v", mm)
			}
		})
	}
}

func TestCrashRecoveryMidStreamRepeatedly(t *testing.T) {
	// Crash at several points in the run; every prefix of committed
	// transactions must be recoverable.
	for _, scheme := range []string{engine.SchemeHOOP, engine.SchemeUndo, engine.SchemeRedo} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			sys, err := engine.New(testConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			runners := newMapRunners(t, sys, 64)
			for round := 0; round < 3; round++ {
				sys.Run(runners, 150)
				sys.Crash()
				if _, err := sys.Recover(2); err != nil {
					t.Fatalf("round %d: recovery failed: %v", round, err)
				}
				if mm := sys.VerifyRecovered(5); len(mm) != 0 {
					t.Fatalf("round %d: mismatches %+v", round, mm)
				}
				// Note: after a crash the in-Go structure handles (maps)
				// still point at recovered persistent state, which is
				// exactly the committed prefix — continuing to run against
				// them exercises post-recovery operation.
			}
		})
	}
}

func TestHoopGCReducesData(t *testing.T) {
	sys, err := engine.New(testConfig(engine.SchemeHOOP))
	if err != nil {
		t.Fatal(err)
	}
	runners := newMapRunners(t, sys, 64)
	sys.Run(runners, 2000)
	q, ok := sys.Scheme().(persist.Quiescer)
	if !ok {
		t.Fatal("HOOP must implement persist.Quiescer")
	}
	q.Quiesce(sys.MaxClock())
	hs, ok := sys.Scheme().(persist.GCReporter)
	if !ok {
		t.Fatal("HOOP must implement persist.GCReporter")
	}
	if hs.GCModifiedBytes() == 0 {
		t.Fatal("GC scanned nothing")
	}
	if hs.GCMigratedBytes() > hs.GCModifiedBytes() {
		t.Fatal("GC migrated more than it scanned")
	}
	red := hs.DataReduction()
	if red <= 0 || red >= 1 {
		t.Fatalf("data reduction %.3f out of (0,1)", red)
	}
	t.Logf("data reduction: %.1f%% (modified %d, migrated %d)",
		red*100, hs.GCModifiedBytes(), hs.GCMigratedBytes())
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, sim.Time, []sim.CounterSample) {
		sys, err := engine.New(testConfig(engine.SchemeHOOP))
		if err != nil {
			t.Fatal(err)
		}
		runners := newMapRunners(t, sys, 64)
		sys.Run(runners, 500)
		return sys.Snapshot().Txs, sys.MaxClock(), sys.Stats().Snapshot()
	}
	tx1, clk1, st1 := run()
	tx2, clk2, st2 := run()
	if tx1 != tx2 || clk1 != clk2 {
		t.Fatalf("non-deterministic: tx %d vs %d, clock %v vs %v", tx1, tx2, clk1, clk2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("counter snapshots differ:\n%v\n%v", st1, st2)
	}
}

func TestSchemeOrderingSanity(t *testing.T) {
	// The native system must be at least as fast as every persistence
	// scheme, and HOOP must beat the logging schemes on write traffic.
	type result struct {
		name    string
		span    sim.Time
		written int64
	}
	var results []result
	for _, scheme := range engine.AllSchemes {
		sys, err := engine.New(testConfig(scheme))
		if err != nil {
			t.Fatal(err)
		}
		runners := newMapRunners(t, sys, 64)
		sys.Run(runners, 1000)
		results = append(results, result{
			name:    scheme,
			span:    sys.MaxClock(),
			written: sys.Stats().Get(sim.StatNVMBytesWritten),
		})
	}
	byName := map[string]result{}
	for _, r := range results {
		byName[r.name] = r
		t.Logf("%-9s span=%v written=%d", r.name, r.span, r.written)
	}
	if byName[engine.SchemeNative].span > byName[engine.SchemeHOOP].span {
		t.Error("Ideal slower than HOOP")
	}
	if byName[engine.SchemeHOOP].span > byName[engine.SchemeUndo].span {
		t.Error("HOOP slower than Opt-Undo")
	}
	if byName[engine.SchemeHOOP].written > byName[engine.SchemeRedo].written {
		t.Error("HOOP wrote more than Opt-Redo")
	}
	if byName[engine.SchemeHOOP].written > byName[engine.SchemeUndo].written {
		t.Error("HOOP wrote more than Opt-Undo")
	}
}

func ExampleSystem() {
	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 1, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 32 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	sys, _ := engine.New(cfg)
	env := sys.NewEnv(0)
	arena := pmem.NewArena(env, pmem.Partition(sys.Layout().Home, 1)[0])
	env.TxBegin()
	arena.Init()
	v := structures.NewVector(env, arena, 8, 64)
	env.TxEnd()

	env.TxBegin()
	item := make([]byte, 64)
	copy(item, "hello, persistent world")
	v.Append(item)
	env.TxEnd()

	got := make([]byte, 64)
	v.Get(0, got)
	fmt.Println(string(got[:23]))
	// Output: hello, persistent world
}
