package engine

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// TxRunner is one workload thread: each RunTx call executes exactly one
// transaction against the environment.
type TxRunner interface {
	RunTx(env *Env)
}

// TxRunnerFunc adapts a function to TxRunner.
type TxRunnerFunc func(env *Env)

// RunTx implements TxRunner.
func (f TxRunnerFunc) RunTx(env *Env) { f(env) }

// Run executes totalTxs transactions spread over the runners (one per
// thread), always advancing the thread with the smallest simulated clock —
// the deterministic equivalent of concurrent execution against shared
// memory-system resources.
func (s *System) Run(runners []TxRunner, totalTxs int) {
	if len(runners) != s.cfg.Threads {
		panic(fmt.Sprintf("engine: %d runners for %d threads", len(runners), s.cfg.Threads))
	}
	envs := make([]*Env, len(runners))
	for i := range runners {
		envs[i] = s.NewEnv(i)
	}
	for done := 0; done < totalTxs; done++ {
		t := 0
		for i := 1; i < len(runners); i++ {
			if s.clocks[i].Now() < s.clocks[t].Now() {
				t = i
			}
		}
		runners[t].RunTx(envs[t])
	}
}

// SyncClocks advances every thread clock to the latest one. Call it after
// a sequential phase (workload setup runs thread-by-thread) so that the
// shared-resource reservation times left behind by later threads do not
// stall earlier threads' next accesses — all threads enter the measured
// phase at the same simulated instant.
func (s *System) SyncClocks() {
	m := s.MaxClock()
	for _, c := range s.clocks {
		c.AdvanceTo(m)
	}
}

// ResetMemoryQueues clears device queue backlog and posted-write tracking.
// Use together with DrainCache/SyncClocks at measurement boundaries: the
// boundary's accounting burst must not stall the next window.
func (s *System) ResetMemoryQueues() {
	s.dev.ResetQueues()
	s.ctrl.ResetPending()
}

// DrainCache writes back every dirty cached line through the persistence
// scheme (without invalidating), charging the traffic that still-cached
// data would eventually cost. The harness calls it to close measurement
// windows fairly across schemes.
func (s *System) DrainCache() {
	now := s.MaxClock()
	for _, ev := range s.hier.DirtyEvictions() {
		s.hier.FlushLine(ev.Line, false)
		s.scheme.Evict(0, ev, now)
	}
}

// Crash models a power failure: all volatile state — caches, controller
// buffers, mapping tables, the logical view — vanishes; only NVM contents
// survive. Open transactions are implicitly aborted.
func (s *System) Crash() {
	if s.tel.Enabled(telemetry.KindTxAbort) {
		for t, open := range s.txOpen {
			if open {
				s.tel.Emit(telemetry.Event{
					Kind: telemetry.KindTxAbort,
					Time: s.clocks[t].Now(),
					Core: int16(t),
					Tx:   uint64(s.txID[t]),
				})
			}
		}
	}
	s.scheme.Crash()
	s.hier.DropAll()
	// The logical view is volatile: it becomes meaningless at the instant
	// of the crash. The store object itself must survive (schemes hold
	// the pointer via persist.Context), so it is cleared in place.
	s.view.Reset()
	for i := range s.txOpen {
		s.txOpen[i] = false
		s.txWrites[i] = nil
	}
	for i := range s.undo {
		s.undo[i].reset()
	}
	s.crashed = true
}

// Recover runs the scheme's recovery with the given thread count and
// reconstitutes the logical view from the recovered durable state. It
// returns the modeled recovery time.
func (s *System) Recover(threads int) (sim.Duration, error) {
	if !s.crashed {
		return 0, fmt.Errorf("engine: Recover without Crash")
	}
	d, err := s.scheme.Recover(threads)
	if err != nil {
		return 0, err
	}
	// After recovery the home region holds exactly the committed data;
	// the logical view resumes from it (in place, preserving the pointer
	// the schemes captured).
	s.view.CopyFrom(s.store)
	s.crashed = false
	return d, nil
}

// Mismatch is one difference between recovered durable state and the
// committed-write oracle.
type Mismatch struct {
	Addr mem.PAddr
	Want byte
	Got  byte
}

// VerifyRecovered compares the durable home region against the committed
// oracle (requires TrackOracle). It returns the first few mismatches, or
// none when recovery reproduced every committed byte.
func (s *System) VerifyRecovered(maxReport int) []Mismatch {
	if s.oracle == nil {
		panic("engine: VerifyRecovered requires Config.TrackOracle")
	}
	var out []Mismatch
	buf := make([]byte, mem.PageSize)
	s.oracle.ForEachPageUntil(func(base mem.PAddr, want []byte) bool {
		if !s.layout.Home.Contains(base) {
			return true
		}
		s.store.Read(base, buf)
		for i := range want {
			if want[i] != buf[i] {
				out = append(out, Mismatch{Addr: base + mem.PAddr(i), Want: want[i], Got: buf[i]})
				if len(out) >= maxReport {
					return false
				}
			}
		}
		return true
	})
	return out
}
