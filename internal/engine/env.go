package engine

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Env is the memory interface handed to workload code. Every access is
// word-aligned (the pmem layer guarantees this) and is simulated through
// the cache hierarchy and the persistence scheme before the functional
// value is returned from the logical view.
type Env struct {
	sys    *System
	thread int
	core   int
	// Scratch word buffers for ReadWord/WriteWord. A stack buffer would
	// escape through the scheme/view interface calls and cost one heap
	// allocation per access; the Env is thread-private, and every callee
	// copies what it keeps, so reuse is safe.
	rbuf [mem.WordSize]byte
	wbuf [mem.WordSize]byte
}

// NewEnv binds an environment to thread t (thread t runs on core t).
func (s *System) NewEnv(t int) *Env {
	if t < 0 || t >= s.cfg.Threads {
		panic(fmt.Sprintf("engine: thread %d out of range", t))
	}
	return &Env{sys: s, thread: t, core: t}
}

// Thread reports the environment's thread index.
func (e *Env) Thread() int { return e.thread }

// Now reports the thread's simulated time.
func (e *Env) Now() sim.Time { return e.sys.clocks[e.thread].Now() }

// AdvanceTo moves the thread's clock forward to t if t is later than the
// current time — the thread idles until t. The service tier uses it to
// align a shard with a request's open-loop arrival time; it never moves
// time backwards.
func (e *Env) AdvanceTo(t sim.Time) { e.sys.clocks[e.thread].AdvanceTo(t) }

// TxBegin opens a failure-atomic region (the paper's Tx_begin).
func (e *Env) TxBegin() {
	s := e.sys
	if s.txOpen[e.thread] {
		panic("engine: nested transactions are not supported")
	}
	clk := s.clocks[e.thread]
	// Background machinery (GC, checkpointing) catches up between
	// transactions.
	s.scheme.Tick(clk.Now())
	clk.AdvanceCycles(2) // set transaction state bit
	tx, t := s.scheme.TxBegin(e.core, clk.Now())
	clk.AdvanceTo(t)
	s.txID[e.thread] = tx
	s.txOpen[e.thread] = true
	s.txBegan[e.thread] = clk.Now()
	if s.undo != nil {
		s.undo[e.thread].reset()
	}
	if s.tel.Enabled(telemetry.KindTxBegin) {
		s.tel.Emit(telemetry.Event{
			Kind: telemetry.KindTxBegin,
			Time: clk.Now(),
			Core: int16(e.thread),
			Tx:   uint64(tx),
		})
	}
}

// TxEnd commits the transaction; on return the updates are durable under
// the scheme's guarantee.
func (e *Env) TxEnd() {
	s := e.sys
	if !s.txOpen[e.thread] {
		panic("engine: TxEnd without TxBegin")
	}
	clk := s.clocks[e.thread]
	clk.AdvanceCycles(2) // clear transaction state bit / commit barrier
	t := s.scheme.TxEnd(e.core, s.txID[e.thread], clk.Now())
	clk.AdvanceTo(t)
	s.txOpen[e.thread] = false
	lat := clk.Now() - s.txBegan[e.thread]
	s.txLatSum += lat
	s.txLatHist.Observe(lat)
	s.txCount++
	if s.tel.Enabled(telemetry.KindTxCommit) {
		s.tel.Emit(telemetry.Event{
			Kind: telemetry.KindTxCommit,
			Time: clk.Now(),
			Core: int16(e.thread),
			Tx:   uint64(s.txID[e.thread]),
			Aux:  int64(lat),
		})
	}
	if s.oracle != nil {
		for _, w := range s.txWrites[e.thread] {
			s.oracle.Write(w.addr, w.data)
		}
	}
	s.txWrites[e.thread] = s.txWrites[e.thread][:0]
}

// TxAbort abandons the open transaction (requires Config.Abortable): the
// volatile view rolls back to its pre-transaction contents, then the
// scheme discards or neutralizes its durable traces — HOOP's OOP slices
// become dead garbage for free, undo logging restores old images in the
// foreground, redo-style schemes just drop their write sets. Aborted
// writes never reach the committed-write oracle.
func (e *Env) TxAbort() {
	s := e.sys
	if !s.txOpen[e.thread] {
		panic("engine: TxAbort without TxBegin")
	}
	if s.undo == nil {
		panic("engine: TxAbort requires Config.Abortable")
	}
	clk := s.clocks[e.thread]
	clk.AdvanceCycles(2) // clear transaction state bit
	// Roll the view back in reverse write order so the oldest pre-image of
	// a re-written address wins. This happens before the scheme hook: the
	// persist.Scheme contract lets abort paths read restored pre-images
	// from View (the undo baseline forces them home).
	u := &s.undo[e.thread]
	for i := len(u.spans) - 1; i >= 0; i-- {
		sp := u.spans[i]
		s.view.Write(sp.addr, u.buf[sp.off:sp.off+sp.n])
	}
	u.reset()
	t := s.scheme.TxAbort(e.core, s.txID[e.thread], clk.Now())
	clk.AdvanceTo(t)
	s.txOpen[e.thread] = false
	s.txAborts++
	if s.tel.Enabled(telemetry.KindTxAbort) {
		s.tel.Emit(telemetry.Event{
			Kind: telemetry.KindTxAbort,
			Time: clk.Now(),
			Core: int16(e.thread),
			Tx:   uint64(s.txID[e.thread]),
			Aux:  int64(clk.Now() - s.txBegan[e.thread]),
		})
	}
	s.txWrites[e.thread] = s.txWrites[e.thread][:0]
}

// InTx reports whether the thread has an open transaction.
func (e *Env) InTx() bool { return e.sys.txOpen[e.thread] }

// Read performs a load of len(buf) bytes at addr, filling buf with the
// current logical contents. addr and len(buf) must be word-aligned.
func (e *Env) Read(addr mem.PAddr, buf []byte) {
	checkAligned(addr, len(buf))
	s := e.sys
	clk := s.clocks[e.thread]
	clk.Advance(s.cfg.OpCost)
	e.access(addr, len(buf), false)
	if s.hook != nil {
		clk.AdvanceTo(s.hook.LoadOverhead(e.core, addr, clk.Now()))
	}
	s.loadOps++
	s.statTxLoads.Inc()
	s.view.Read(addr, buf)
	if s.tel.Enabled(telemetry.KindLoad) {
		s.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindLoad,
			Time:  clk.Now(),
			Core:  int16(e.thread),
			Tx:    uint64(s.txID[e.thread]),
			Addr:  addr,
			Bytes: int64(len(buf)),
		})
	}
}

// ReadWord loads the 8-byte word at addr.
func (e *Env) ReadWord(addr mem.PAddr) uint64 {
	e.Read(addr, e.rbuf[:])
	return leU64(e.rbuf[:])
}

// Write performs a transactional store of data at addr. It must be called
// inside a transaction; addr and len(data) must be word-aligned.
func (e *Env) Write(addr mem.PAddr, data []byte) {
	checkAligned(addr, len(data))
	s := e.sys
	if !s.txOpen[e.thread] {
		panic("engine: store outside a transaction (wrap updates in TxBegin/TxEnd)")
	}
	clk := s.clocks[e.thread]
	clk.Advance(s.cfg.OpCost)
	e.access(addr, len(data), true)
	t := s.scheme.Store(e.core, s.txID[e.thread], addr, data, clk.Now())
	clk.AdvanceTo(t)
	if s.undo != nil {
		// Capture the pre-image (the view is written below, after the
		// scheme hook) so TxAbort can roll the view back. The arena append
		// reserves the span; the read then fills it with the old bytes.
		u := &s.undo[e.thread]
		off := len(u.buf)
		u.buf = append(u.buf, data...)
		s.view.Read(addr, u.buf[off:off+len(data)])
		u.spans = append(u.spans, undoSpan{addr: addr, off: off, n: len(data)})
	}
	if s.oracle != nil {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.txWrites[e.thread] = append(s.txWrites[e.thread], writeRec{addr: addr, data: cp})
	}
	s.view.Write(addr, data)
	s.storeOps++
	s.statTxStores.Inc()
	if s.tel.Enabled(telemetry.KindStore) {
		s.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindStore,
			Time:  clk.Now(),
			Core:  int16(e.thread),
			Tx:    uint64(s.txID[e.thread]),
			Addr:  addr,
			Bytes: int64(len(data)),
			Data:  data,
		})
	}
}

// WriteWord stores the 8-byte word v at addr. Store events alias the
// written bytes only for the duration of Emit (sinks copy what they
// keep), so the traced path shares the per-env scratch buffer too and
// stays allocation-free.
func (e *Env) WriteWord(addr mem.PAddr, v uint64) {
	putLE64(e.wbuf[:], v)
	e.Write(addr, e.wbuf[:])
}

// NoteScan accounts one structure-level range scan that read items values
// totalling bytes. The data and node accesses were already simulated (and
// charged) through Read; NoteScan only records the op-level fact — scan
// counters and one KindScan event — so reports can attribute traffic to
// scans without per-item event volume. It advances no clock.
func (e *Env) NoteScan(items, bytes int) {
	s := e.sys
	s.statScanOps.Inc()
	s.statScanItems.Add(int64(items))
	if s.tel.Enabled(telemetry.KindScan) {
		s.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindScan,
			Time:  s.clocks[e.thread].Now(),
			Core:  int16(e.thread),
			Tx:    uint64(s.txID[e.thread]),
			Bytes: int64(bytes),
			Aux:   int64(items),
		})
	}
}

// access simulates the cache behaviour of touching [addr, addr+size).
func (e *Env) access(addr mem.PAddr, size int, write bool) {
	s := e.sys
	clk := s.clocks[e.thread]
	persistent := write && s.txOpen[e.thread]
	for a := mem.LineAddr(addr); a < addr+mem.PAddr(size); a += mem.LineSize {
		r := s.hier.Lookup(e.core, a, write, persistent)
		clk.Advance(r.Latency)
		if r.HitLevel != 0 {
			continue
		}
		done, fillDirty := s.scheme.ReadMiss(e.core, a, clk.Now())
		clk.AdvanceTo(done)
		evs := s.hier.Fill(e.core, a, write || fillDirty, persistent || fillDirty)
		for _, ev := range evs {
			t := s.scheme.Evict(e.core, ev, clk.Now())
			clk.AdvanceTo(t)
		}
	}
}

func checkAligned(addr mem.PAddr, n int) {
	if !mem.IsWordAligned(addr) || n%mem.WordSize != 0 || n == 0 {
		panic(fmt.Sprintf("engine: access must be word-aligned and non-empty (addr=%v, n=%d)", addr, n))
	}
}

func leU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func putLE64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
