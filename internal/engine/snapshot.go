package engine

import (
	"hoop/internal/sim"
)

// RunSnapshot is the full externally visible result of a run at one
// instant: transaction, operation, latency, energy, and counter totals.
// It replaces the old pile of per-metric System accessors
// (TxCount/TxLatencySum/Ops/...) with one plain value that is cheap to
// take, comparable across snapshots, and JSON-marshalable for artifacts.
//
// Snapshots taken before and after a measurement window subtract with
// Delta; the latency quantiles are distribution-shaped and therefore
// always describe the whole run so far, not a window.
type RunSnapshot struct {
	// Scheme is the persistence scheme name ("HOOP", "Opt-Redo", ...).
	Scheme string `json:"scheme"`
	// Threads is the number of workload threads.
	Threads int `json:"threads"`
	// Span is the latest thread clock — the simulated wall-clock so far.
	Span sim.Time `json:"span_ps"`
	// Txs counts committed transactions.
	Txs int64 `json:"txs"`
	// Aborts counts aborted transactions (Env.TxAbort; conflict aborts
	// under a concurrency-control policy land here).
	Aborts int64 `json:"aborts"`
	// Loads and Stores count workload memory operations.
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
	// TxLatencySum is the summed critical-path latency of all committed
	// transactions (Tx_begin to durable Tx_end, §IV-C).
	TxLatencySum sim.Duration `json:"tx_latency_sum_ps"`
	// TxLatencyP50/P90/P99 are critical-path latency quantiles over every
	// transaction so far (log-bucketed; see sim.Histogram).
	TxLatencyP50 sim.Duration `json:"tx_latency_p50_ps"`
	TxLatencyP90 sim.Duration `json:"tx_latency_p90_ps"`
	TxLatencyP99 sim.Duration `json:"tx_latency_p99_ps"`
	// ReadEnergyPJ and WriteEnergyPJ are the NVM device energies.
	ReadEnergyPJ  float64 `json:"read_energy_pj"`
	WriteEnergyPJ float64 `json:"write_energy_pj"`
	// Counters holds every registered stats counter in registration order.
	Counters []sim.CounterSample `json:"counters"`
}

// Snapshot captures the system's current totals.
func (s *System) Snapshot() RunSnapshot {
	return RunSnapshot{
		Scheme:        s.scheme.Name(),
		Threads:       s.cfg.Threads,
		Span:          s.MaxClock(),
		Txs:           s.txCount,
		Aborts:        s.txAborts,
		Loads:         s.loadOps,
		Stores:        s.storeOps,
		TxLatencySum:  s.txLatSum,
		TxLatencyP50:  s.txLatHist.Quantile(0.50),
		TxLatencyP90:  s.txLatHist.Quantile(0.90),
		TxLatencyP99:  s.txLatHist.Quantile(0.99),
		ReadEnergyPJ:  s.dev.ReadEnergyPJ(),
		WriteEnergyPJ: s.dev.WriteEnergyPJ(),
		Counters:      s.stats.Snapshot(),
	}
}

// AvgTxLatency reports the mean critical-path latency of the snapshot.
func (r RunSnapshot) AvgTxLatency() sim.Duration {
	if r.Txs == 0 {
		return 0
	}
	return r.TxLatencySum / sim.Duration(r.Txs)
}

// TotalEnergyPJ reports combined read+write NVM energy.
func (r RunSnapshot) TotalEnergyPJ() float64 { return r.ReadEnergyPJ + r.WriteEnergyPJ }

// Counter reports the named stats counter's value, zero if absent. The
// scan is linear: snapshots hold a few dozen counters and are consumed
// off the hot path.
func (r RunSnapshot) Counter(name string) int64 {
	for _, c := range r.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// CounterMap returns the counters as a name-keyed map, for consumers that
// diff or join them.
func (r RunSnapshot) CounterMap() map[string]int64 {
	out := make(map[string]int64, len(r.Counters))
	for _, c := range r.Counters {
		out[c.Name] = c.Value
	}
	return out
}

// Delta returns the window r-before: cumulative totals subtracted
// counter-by-counter. Quantiles and scheme identity are taken from r —
// they describe distributions and configuration, not windows. Counters
// registered after the before-snapshot keep their full value.
func (r RunSnapshot) Delta(before RunSnapshot) RunSnapshot {
	out := r
	out.Span = r.Span - before.Span
	out.Txs = r.Txs - before.Txs
	out.Aborts = r.Aborts - before.Aborts
	out.Loads = r.Loads - before.Loads
	out.Stores = r.Stores - before.Stores
	out.TxLatencySum = r.TxLatencySum - before.TxLatencySum
	out.ReadEnergyPJ = r.ReadEnergyPJ - before.ReadEnergyPJ
	out.WriteEnergyPJ = r.WriteEnergyPJ - before.WriteEnergyPJ
	prev := before.CounterMap()
	out.Counters = make([]sim.CounterSample, len(r.Counters))
	for i, c := range r.Counters {
		out.Counters[i] = sim.CounterSample{Name: c.Name, Value: c.Value - prev[c.Name]}
	}
	return out
}
