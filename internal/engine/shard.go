package engine

import (
	"fmt"
	"sync"

	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Shard wraps one System behind a request mailbox and an explicit
// lifecycle: one goroutine, one engine, one persist-scheme instance per
// shard. Shards are the composable unit the service tier scales out —
// because each shard's engine is fully self-contained (own sim.Stats,
// mem.Store, PRNGs; the same isolation harness.RunCells relies on), a
// fleet of shards executes on real OS threads while every shard's
// simulated run stays bit-identical to a serial execution of the same
// request sequence.
//
// Lifecycle: Open (build the engine) → Serve (start the mailbox
// goroutine) → Enqueue… → Quiesce (drain; repeatable) → Close (stop).
// Enqueue is single-producer: one router goroutine feeds one shard.
// Between a Quiesce and the next Enqueue the serving goroutine is parked
// on the mailbox, so the owner may read the shard's System directly
// (Snapshot, state digests); the Quiesce reply establishes the
// happens-before edge.

// ShardRequest is one mailbox entry: a service-defined operation with its
// open-loop arrival time. The struct is deliberately flat (no closures) so
// a soak's request stream costs no allocations beyond the channel buffer.
type ShardRequest struct {
	// Arrival is the request's open-loop arrival time, relative to the
	// shard's stream epoch (the instant Setup finished, so load schedules
	// start at zero regardless of how long preloading took). The shard
	// advances its clock to at least epoch+Arrival before executing; if
	// it is running behind, the difference is the simulated queueing
	// delay.
	Arrival sim.Time
	// Seq is the router's global sequence number (tracing/debugging).
	Seq uint64
	// Kind is a service-defined opcode.
	Kind uint8
	// Key and Aux are service-defined operands (key, value seed, ...).
	Key uint64
	Aux uint64
}

// ShardHandler executes requests against a shard's engine. Both methods
// run on the shard's serving goroutine, so a handler needs no locking for
// per-shard state.
type ShardHandler interface {
	// Setup runs once, before any request, inside the serving goroutine:
	// format arenas, preload data. region is the shard engine's home
	// region and seed the shard's derived seed.
	Setup(env *Env, region mem.Region, shard int, seed uint64)
	// Handle executes one admitted request. The env clock has already been
	// advanced to at least req.Arrival.
	Handle(env *Env, req ShardRequest)
}

// ShardConfig describes one shard of a run.
type ShardConfig struct {
	// Index is the shard's position on the ring.
	Index int
	// RunSeed is the run-wide seed; the shard derives its own seed as
	// ShardSeed(RunSeed, Index) — a rule that depends only on the pair, so
	// shard i of a run is deterministic regardless of how many other
	// shards exist.
	RunSeed uint64
	// Engine is the shard's engine configuration (one serving thread).
	Engine Config
	// QueueDepth bounds the mailbox (default 1024). A full mailbox blocks
	// the producer in real time only; simulated arrival times are carried
	// by the requests, so the open-loop schedule is unaffected.
	QueueDepth int
	// ShedDelay, when positive, sheds any request whose simulated queueing
	// delay exceeds it instead of executing (admission control at the
	// shard boundary). The decision depends only on simulated time, so
	// shedding is deterministic. Zero means never shed (block policy).
	ShedDelay sim.Duration
}

// ShardSeed derives shard index's seed from the run seed (splitmix64-style
// mix). The derivation uses only (runSeed, index) — never the shard count —
// so a shard's setup PRNG stream is identical whether it is one of 1 or one
// of 64.
func ShardSeed(runSeed uint64, index int) uint64 {
	z := runSeed + 0x9E3779B97F4A7C15*uint64(index+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// shard lifecycle states.
const (
	shardOpen = iota
	shardServing
	shardClosed
)

// mailbox control opcodes (requests with ctl != ctlRequest carry no
// service payload).
const (
	ctlRequest = iota
	ctlQuiesce
)

type shardMsg struct {
	req  ShardRequest
	ctl  int
	done chan struct{} // reply for ctlQuiesce
}

// Shard is one service shard. Not safe for concurrent producers: the
// router owns Enqueue/Quiesce/Close.
type Shard struct {
	sys     *System
	handler ShardHandler
	index   int
	seed    uint64
	shed    sim.Duration

	mbox  chan shardMsg
	wg    sync.WaitGroup
	state int

	// Serving-goroutine-private accounting (readable after Quiesce).
	epoch    sim.Time // stream epoch: clock when Setup finished
	executed int64
	shedded  int64
	sojourn  sim.Histogram // arrival → completion, includes queueing delay
	maxDelay sim.Duration
}

// OpenShard builds the shard's engine. The handler's Setup runs when Serve
// starts, inside the serving goroutine.
func OpenShard(cfg ShardConfig, handler ShardHandler) (*Shard, error) {
	if handler == nil {
		return nil, fmt.Errorf("engine: shard %d needs a handler", cfg.Index)
	}
	sys, err := New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("engine: shard %d: %w", cfg.Index, err)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 1024
	}
	return &Shard{
		sys:     sys,
		handler: handler,
		index:   cfg.Index,
		seed:    ShardSeed(cfg.RunSeed, cfg.Index),
		shed:    cfg.ShedDelay,
		mbox:    make(chan shardMsg, depth),
		state:   shardOpen,
	}, nil
}

// Index reports the shard's ring position.
func (s *Shard) Index() int { return s.index }

// Seed reports the shard's derived seed.
func (s *Shard) Seed() uint64 { return s.seed }

// System exposes the shard's engine. Safe to read between Quiesce and the
// next Enqueue, or after Close.
func (s *Shard) System() *System { return s.sys }

// Serve starts the serving goroutine: Setup first, then requests in FIFO
// order until Close.
func (s *Shard) Serve() {
	if s.state != shardOpen {
		panic(fmt.Sprintf("engine: Serve on shard %d in state %d", s.index, s.state))
	}
	s.state = shardServing
	s.wg.Add(1)
	go s.serve()
}

func (s *Shard) serve() {
	defer s.wg.Done()
	env := s.sys.NewEnv(0)
	s.handler.Setup(env, s.sys.Layout().Home, s.index, s.seed)
	s.epoch = env.Now()
	tel := s.sys.Telemetry()
	for msg := range s.mbox {
		if msg.ctl == ctlQuiesce {
			s.drain()
			close(msg.done)
			continue
		}
		req := msg.req
		arrival := s.epoch + req.Arrival
		delay := env.Now() - arrival // >0 means the request waited
		if delay < 0 {
			delay = 0
		}
		if delay > s.maxDelay {
			s.maxDelay = delay
		}
		if s.shed > 0 && delay > s.shed {
			s.shedded++
			if tel.Enabled(telemetry.KindShardShed) {
				tel.Emit(telemetry.Event{
					Kind: telemetry.KindShardShed,
					Time: arrival,
					Core: 0,
					Tx:   req.Seq,
					Aux:  int64(delay),
				})
			}
			continue
		}
		if tel.Enabled(telemetry.KindShardEnqueue) {
			tel.Emit(telemetry.Event{
				Kind: telemetry.KindShardEnqueue,
				Time: arrival,
				Core: 0,
				Tx:   req.Seq,
				Aux:  int64(delay),
			})
		}
		env.AdvanceTo(arrival)
		s.handler.Handle(env, req)
		s.executed++
		s.sojourn.Observe(env.Now() - arrival)
	}
}

// shardQuiesceTicks bounds the Tick catch-up loop that lets epoch-driven
// background machinery observe the drained state (mirrors the harness's
// measurement-boundary quiesce).
const shardQuiesceTicks = 64

// drain closes off in-flight engine work on the serving goroutine: dirty
// cached lines write back through the scheme and deferred background
// machinery (GC, consolidation, checkpointing) runs to completion, so a
// snapshot taken after Quiesce charges every scheme its full traffic.
func (s *Shard) drain() {
	s.sys.DrainCache()
	if q, ok := s.sys.Scheme().(persist.Quiescer); ok {
		q.Quiesce(s.sys.MaxClock())
	}
	for i := 0; i < shardQuiesceTicks; i++ {
		s.sys.Scheme().Tick(s.sys.MaxClock())
	}
}

// Enqueue submits one request. It blocks while the mailbox is full (real-
// time backpressure on the producer; the simulated schedule rides in
// req.Arrival). Requests execute in enqueue order.
func (s *Shard) Enqueue(req ShardRequest) {
	if s.state != shardServing {
		panic(fmt.Sprintf("engine: Enqueue on shard %d while not serving", s.index))
	}
	s.mbox <- shardMsg{req: req, ctl: ctlRequest}
}

// Quiesce blocks until every previously enqueued request has executed.
// The shard keeps serving afterwards; Quiesce is the synchronization point
// that makes System/Sojourn/Executed safe to read.
func (s *Shard) Quiesce() {
	if s.state != shardServing {
		panic(fmt.Sprintf("engine: Quiesce on shard %d while not serving", s.index))
	}
	done := make(chan struct{})
	s.mbox <- shardMsg{ctl: ctlQuiesce, done: done}
	<-done
}

// Close drains the mailbox and stops the serving goroutine. The shard's
// System stays readable (final snapshots, recovery experiments).
func (s *Shard) Close() {
	switch s.state {
	case shardClosed:
		return
	case shardOpen:
		s.state = shardClosed
		return
	}
	close(s.mbox)
	s.wg.Wait()
	s.state = shardClosed
}

// Executed reports requests handled; Shed reports requests dropped by
// admission control. Read between Quiesce and the next Enqueue, or after
// Close.
func (s *Shard) Executed() int64 { return s.executed }
func (s *Shard) Shed() int64     { return s.shedded }

// Epoch reports the shard's stream epoch — the simulated instant Setup
// finished, from which request arrival times are offset. Same read
// discipline as Executed.
func (s *Shard) Epoch() sim.Time { return s.epoch }

// Sojourn returns a copy of the arrival-to-completion latency distribution
// (queueing delay plus execution). Same read discipline as Executed.
func (s *Shard) Sojourn() sim.Histogram { return s.sojourn }

// MaxQueueDelay reports the largest simulated queueing delay any request
// saw at admission. Same read discipline as Executed.
func (s *Shard) MaxQueueDelay() sim.Duration { return s.maxDelay }
