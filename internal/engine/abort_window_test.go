package engine_test

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// abortableSystem is smallSystem with the cc-layer abort machinery on.
func abortableSystem(t *testing.T, scheme string) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.Abortable = true
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAbortAccountingSurvivesWindowing closes the latent gap the harness
// had before the cc layer landed: Metrics windows are computed as
// Snapshot()/Delta() differences, and nothing asserted that aborts inside
// a measure window are counted — or that aborts outside it are not.
func TestAbortAccountingSurvivesWindowing(t *testing.T) {
	for _, scheme := range []string{engine.SchemeNative, engine.SchemeHOOP} {
		t.Run(scheme, func(t *testing.T) {
			sys := abortableSystem(t, scheme)
			env := sys.NewEnv(0)
			runTx := func(abort bool) {
				env.TxBegin()
				env.WriteWord(mem.PAddr(0x1000), 0xABCD)
				if abort {
					env.TxAbort()
				} else {
					env.TxEnd()
				}
			}
			// Pre-window traffic: 2 aborts, 1 commit.
			runTx(true)
			runTx(true)
			runTx(false)
			before := sys.Snapshot()
			// In-window traffic: 3 aborts, 2 commits.
			runTx(true)
			runTx(false)
			runTx(true)
			runTx(true)
			runTx(false)
			after := sys.Snapshot()
			// Post-window traffic must not leak into the delta.
			runTx(true)

			if got := after.Aborts; got != 5 {
				t.Errorf("cumulative snapshot: Aborts = %d, want 5", got)
			}
			d := after.Delta(before)
			if d.Aborts != 3 {
				t.Errorf("window delta: Aborts = %d, want 3", d.Aborts)
			}
			if d.Txs != 2 {
				t.Errorf("window delta: Txs = %d, want 2", d.Txs)
			}
			if final := sys.Snapshot(); final.Aborts != 6 {
				t.Errorf("final snapshot: Aborts = %d, want 6", final.Aborts)
			}
		})
	}
}
