package u64map

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestBasicOps exercises the plain insert/lookup/overwrite/delete cycle.
func TestBasicOps(t *testing.T) {
	var m Map[int]
	if m.Len() != 0 {
		t.Fatalf("zero-value Len = %d, want 0", m.Len())
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("Get on empty map reported a hit")
	}
	m.Put(7, 70)
	m.Put(8, 80)
	m.Put(7, 71) // overwrite
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(7); !ok || v != 71 {
		t.Fatalf("Get(7) = %d,%v, want 71,true", v, ok)
	}
	if v, ok := m.Delete(7); !ok || v != 71 {
		t.Fatalf("Delete(7) = %d,%v, want 71,true", v, ok)
	}
	if m.Contains(7) {
		t.Fatal("Contains(7) after delete")
	}
	if _, ok := m.Delete(7); ok {
		t.Fatal("double Delete(7) reported present")
	}
	if v, ok := m.Get(8); !ok || v != 80 {
		t.Fatalf("Get(8) after unrelated delete = %d,%v, want 80,true", v, ok)
	}
}

// TestZeroKey checks that key 0 is an ordinary key (liveness comes from the
// epoch stamp, not from a reserved empty-key sentinel).
func TestZeroKey(t *testing.T) {
	var m Map[string]
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v", v, ok)
	}
	m.Clear()
	if m.Contains(0) {
		t.Fatal("Contains(0) after Clear")
	}
}

// TestGrow inserts past several doublings and checks every entry survives
// each rehash and the capacity stays a power of two.
func TestGrow(t *testing.T) {
	var m Map[uint64]
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		m.Put(i*2654435761, i)
		if !powerOfTwo(m.Cap()) {
			t.Fatalf("cap %d not a power of two after %d inserts", m.Cap(), i+1)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i * 2654435761); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after grow", i*2654435761, v, ok)
		}
	}
	// Load factor must stay below 3/4 after growth.
	if m.Len()*4 > m.Cap()*3 {
		t.Fatalf("load factor %d/%d exceeds 3/4", m.Len(), m.Cap())
	}
}

// TestEpochClear checks Clear drops all entries without shrinking, and the
// table is fully reusable afterwards.
func TestEpochClear(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i))
	}
	capBefore := m.Cap()
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	if m.Cap() != capBefore {
		t.Fatalf("Clear changed cap %d -> %d", capBefore, m.Cap())
	}
	for i := uint64(0); i < 100; i++ {
		if m.Contains(i) {
			t.Fatalf("Contains(%d) after Clear", i)
		}
	}
	// Reuse across many epochs; each epoch must see only its own entries.
	for epoch := 0; epoch < 50; epoch++ {
		m.Clear()
		base := uint64(epoch * 1000)
		for i := uint64(0); i < 10; i++ {
			m.Put(base+i, epoch)
		}
		if m.Len() != 10 {
			t.Fatalf("epoch %d: Len = %d, want 10", epoch, m.Len())
		}
		if epoch > 0 && m.Contains(uint64((epoch-1)*1000)) {
			t.Fatalf("epoch %d sees previous epoch's key", epoch)
		}
	}
}

// TestEpochWraparound forces the 32-bit epoch counter past zero and checks
// stale stamps cannot resurrect.
func TestEpochWraparound(t *testing.T) {
	var m Map[int]
	m.Put(42, 1)
	slot := m.find(42)
	m.epoch = ^uint32(0) - 1
	m.stamp[slot] = m.epoch // keep the entry live in the forced epoch
	m.Clear()               // -> ^uint32(0)
	m.Put(99, 2)
	m.Clear() // wraps: stamps zeroed, epoch back to 1
	if m.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", m.epoch)
	}
	if m.Contains(42) || m.Contains(99) {
		t.Fatal("stale entry visible after epoch wraparound")
	}
	m.Put(7, 3)
	if v, ok := m.Get(7); !ok || v != 3 {
		t.Fatalf("map unusable after wraparound: Get(7) = %d,%v", v, ok)
	}
}

// TestCollisionChains builds keys that collide into the same home slot and
// checks lookups and backward-shift deletion keep every chain intact.
func TestCollisionChains(t *testing.T) {
	var m Map[uint64]
	m.init(16)
	// Find 6 keys whose home slot is identical at the initial capacity.
	home := hash(1) & m.mask
	keys := []uint64{1}
	for k := uint64(2); len(keys) < 6; k++ {
		if hash(k)&m.mask == home {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		m.Put(k, k*10)
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k*10 {
			t.Fatalf("colliding Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Delete from the middle of the chain; the rest must stay reachable.
	mid := keys[2]
	m.Delete(mid)
	for _, k := range keys {
		want := k != mid
		if m.Contains(k) != want {
			t.Fatalf("after mid-chain delete, Contains(%d) = %v, want %v", k, m.Contains(k), want)
		}
	}
	// Delete the head; tail still reachable.
	m.Delete(keys[0])
	for _, k := range keys[3:] {
		if !m.Contains(k) {
			t.Fatalf("after head delete, lost %d", k)
		}
	}
}

// TestRef checks in-place mutation through the returned pointer.
func TestRef(t *testing.T) {
	var m Map[[2]int]
	p := m.Ref(5)
	p[0] = 1
	q := m.Ref(5)
	if q[0] != 1 {
		t.Fatal("Ref did not return the stored value")
	}
	q[1] = 2
	if v, _ := m.Get(5); v != [2]int{1, 2} {
		t.Fatalf("Get(5) = %v", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestKeysDeterministic checks that two maps built by the same history
// iterate in the same order (Go maps famously do not).
func TestKeysDeterministic(t *testing.T) {
	build := func() []uint64 {
		var m Map[int]
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 500; i++ {
			m.Put(rng.Uint64()%1000, i)
		}
		for i := 0; i < 200; i++ {
			m.Delete(rng.Uint64() % 1000)
		}
		return m.Keys(nil)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRange checks Range visits every entry exactly once and honors early
// termination.
func TestRange(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 64; i++ {
		m.Put(i, int(i))
	}
	seen := map[uint64]int{}
	m.Range(func(k uint64, v *int) bool {
		seen[k]++
		if uint64(*v) != k {
			t.Fatalf("Range value mismatch: %d -> %d", k, *v)
		}
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("Range visited %d keys, want 64", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("Range visited %d %d times", k, c)
		}
	}
	count := 0
	m.Range(func(uint64, *int) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early-terminated Range visited %d, want 5", count)
	}
}

// mapOp is one step of a randomized history for the model check.
type mapOp struct {
	Kind uint8 // 0 put, 1 delete, 2 get, 3 clear (rare)
	Key  uint16
	Val  uint32
}

// TestQuickAgainstGoMap model-checks Map against the built-in map over
// random operation histories generated by testing/quick.
func TestQuickAgainstGoMap(t *testing.T) {
	check := func(ops []mapOp) bool {
		var m Map[uint32]
		ref := map[uint64]uint32{}
		for _, op := range ops {
			k := uint64(op.Key) % 512 // force collisions and re-insertion
			switch op.Kind % 8 {      // clear at 1/8 frequency
			case 0, 1, 2:
				m.Put(k, op.Val)
				ref[k] = op.Val
			case 3, 4:
				_, gotOK := m.Delete(k)
				_, wantOK := ref[k]
				delete(ref, k)
				if gotOK != wantOK {
					return false
				}
			case 5, 6:
				got, gotOK := m.Get(k)
				want, wantOK := ref[k]
				if gotOK != wantOK || (gotOK && got != want) {
					return false
				}
			case 7:
				m.Clear()
				clear(ref)
			}
			if m.Len() != len(ref) {
				return false
			}
		}
		// Full sweep: both directions.
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				return false
			}
		}
		keys := m.Keys(nil)
		if len(keys) != len(ref) {
			return false
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				return false // duplicate live slot
			}
		}
		for _, k := range keys {
			if _, ok := ref[k]; !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSet exercises the Set wrapper.
func TestSet(t *testing.T) {
	var s Set
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add newness reporting wrong")
	}
	s.Add(9)
	if s.Len() != 2 || !s.Contains(3) || !s.Contains(9) || s.Contains(4) {
		t.Fatal("Set membership wrong")
	}
	if !s.Delete(3) || s.Delete(3) {
		t.Fatal("Delete presence reporting wrong")
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(9) {
		t.Fatal("Clear left members behind")
	}
	if got := NewSet(100).m.Cap(); !powerOfTwo(got) || got < 100 {
		t.Fatalf("NewSet(100) cap = %d", got)
	}
}

// TestSteadyStateZeroAlloc locks the zero-allocation guarantee for the
// steady-state operation mix once the table has reached its working size.
func TestSteadyStateZeroAlloc(t *testing.T) {
	m := NewMap[uint64](256)
	for i := uint64(0); i < 256; i++ {
		m.Put(i, i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		k := i % 256
		m.Put(k, i)
		m.Get(k)
		m.Contains(k + 1)
		m.Delete(k)
		m.Put(k, i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Map ops allocate %v/run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		m.Clear()
		for j := uint64(0); j < 64; j++ {
			m.Put(j, j)
		}
	})
	if allocs != 0 {
		t.Fatalf("Clear+refill allocates %v/run, want 0", allocs)
	}
	s := NewSet(64)
	k := uint64(0)
	allocs = testing.AllocsPerRun(1000, func() {
		k++
		s.Add(k % 64)
		s.Contains(k)
		s.Delete(k % 64)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Set ops allocate %v/run, want 0", allocs)
	}
}

func BenchmarkPutGetDelete(b *testing.B) {
	m := NewMap[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % 1024
		m.Put(k, uint64(i))
		m.Get(k)
		if i%4 == 3 {
			m.Delete(k)
		}
	}
}

func BenchmarkClearRefill(b *testing.B) {
	m := NewMap[uint64](256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Clear()
		for j := uint64(0); j < 64; j++ {
			m.Put(j, j)
		}
	}
}
