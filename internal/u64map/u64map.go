// Package u64map provides the specialized index structures used on the
// simulator's per-transaction hot paths: an open-addressed hash table keyed
// by uint64 (Map) and a set built on it (Set).
//
// The structures exist because the simulator spends its wall clock in
// metadata indexing, not simulated work: HOOP's mapping table, the per-line
// write tracking, the cache presence index and the baselines' write sets
// are all keyed by small integers (line indices, physical addresses,
// transaction IDs), are cleared wholesale at epoch boundaries (GC passes,
// transaction commits), and sit under every simulated store. A generic Go
// map pays interface hashing, random iteration order, and a fresh
// allocation per make(); this table pays one multiplicative hash, iterates
// deterministically in slot order, and clears in O(1) without freeing its
// backing arrays.
//
// Properties:
//
//   - Open addressing with linear probing over a power-of-two slot array.
//   - Deletion by backward shift, so there are never tombstones and probe
//     chains stay short regardless of churn.
//   - O(1) Clear via epoch stamps: a slot is live iff its stamp equals the
//     table's current epoch, so clearing is one counter increment and the
//     key/value arrays are reused across epochs instead of reallocated.
//     When the 32-bit epoch counter would wrap, the stamp array is zeroed
//     once — amortized to nothing.
//   - Steady-state Get/Put/Delete/Clear perform zero heap allocations
//     (locked by tests with testing.AllocsPerRun).
//   - Iteration (Keys, Range) walks slots in index order: deterministic for
//     a given insertion/deletion history, unlike Go's randomized map order.
//     Callers that need address order still sort, but no caller needs to
//     defend against run-to-run nondeterminism.
//
// Memory bounds: a table that has grown to capacity C holds C×(8 bytes key
// + sizeof(V) value + 4 bytes stamp) and never shrinks; capacity doubles at
// 3/4 occupancy. This mirrors the hardware structures being simulated,
// which are fixed-size tables, not garbage-collected heaps.
package u64map

import "math/bits"

// minCap is the smallest slot-array capacity (must be a power of two).
const minCap = 8

// Map is an open-addressed hash table from uint64 keys to V values.
// The zero value is ready to use.
type Map[V any] struct {
	keys  []uint64
	vals  []V
	stamp []uint32 // slot live iff stamp[i] == epoch
	epoch uint32   // current epoch; starts at 1, never 0 (0 = dead slot)
	mask  uint64   // len(keys) - 1
	n     int
}

// hash is the splitmix64 finalizer: a full-avalanche multiplicative mix so
// that sequential line indices (the dominant key distribution) spread
// uniformly over the slot array.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (m *Map[V]) init(capacity int) {
	c := minCap
	for c < capacity {
		c <<= 1
	}
	m.keys = make([]uint64, c)
	m.vals = make([]V, c)
	m.stamp = make([]uint32, c)
	m.epoch = 1
	m.mask = uint64(c - 1)
	m.n = 0
}

// NewMap returns a map pre-sized to hold about capHint entries without
// growing. The zero value works too; NewMap just avoids the early doublings.
func NewMap[V any](capHint int) *Map[V] {
	m := &Map[V]{}
	m.init(capHint * 4 / 3)
	return m
}

// Len reports the number of live entries.
func (m *Map[V]) Len() int { return m.n }

// Cap reports the current slot-array capacity (for memory accounting).
func (m *Map[V]) Cap() int { return len(m.keys) }

// find returns the slot of k, or -1 when absent.
func (m *Map[V]) find(k uint64) int {
	if m.n == 0 {
		return -1
	}
	for i := hash(k) & m.mask; ; i = (i + 1) & m.mask {
		if m.stamp[i] != m.epoch {
			return -1
		}
		if m.keys[i] == k {
			return int(i)
		}
	}
}

// Get returns the value stored under k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if i := m.find(k); i >= 0 {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k uint64) bool { return m.find(k) >= 0 }

// Put stores v under k, replacing any existing value.
func (m *Map[V]) Put(k uint64, v V) { *m.Ref(k) = v }

// Ref returns a pointer to the value stored under k, inserting a zero
// value first when k is absent. The pointer is valid until the next
// insertion into the map (which may grow the backing array).
func (m *Map[V]) Ref(k uint64) *V {
	if m.stamp == nil {
		m.init(minCap)
	}
	i := hash(k) & m.mask
	for ; ; i = (i + 1) & m.mask {
		if m.stamp[i] != m.epoch {
			break
		}
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
	if (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
		// Re-probe in the grown array for the insertion slot.
		for i = hash(k) & m.mask; m.stamp[i] == m.epoch; i = (i + 1) & m.mask {
		}
	}
	var zero V
	m.keys[i] = k
	m.vals[i] = zero
	m.stamp[i] = m.epoch
	m.n++
	return &m.vals[i]
}

// grow doubles the slot array and rehashes every live entry.
func (m *Map[V]) grow() {
	oldKeys, oldVals, oldStamp, oldEpoch := m.keys, m.vals, m.stamp, m.epoch
	m.init(len(oldKeys) * 2)
	for i := range oldKeys {
		if oldStamp[i] != oldEpoch {
			continue
		}
		j := hash(oldKeys[i]) & m.mask
		for ; m.stamp[j] == m.epoch; j = (j + 1) & m.mask {
		}
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
		m.stamp[j] = m.epoch
		m.n++
	}
}

// Delete removes k, returning the removed value. Removal backward-shifts
// the following probe chain so no tombstone is left behind.
func (m *Map[V]) Delete(k uint64) (V, bool) {
	var zero V
	i := m.find(k)
	if i < 0 {
		return zero, false
	}
	old := m.vals[i]
	hole := uint64(i)
	for j := (hole + 1) & m.mask; m.stamp[j] == m.epoch; j = (j + 1) & m.mask {
		// Slot j may fill the hole iff its home position does not lie in
		// the cyclic range (hole, j] — otherwise moving it would break its
		// own probe chain.
		home := hash(m.keys[j]) & m.mask
		if ((j - home) & m.mask) >= ((j - hole) & m.mask) {
			m.keys[hole] = m.keys[j]
			m.vals[hole] = m.vals[j]
			hole = j
		}
	}
	m.stamp[hole] = 0
	m.vals[hole] = zero // release any pointers held by V
	m.n--
	return old, true
}

// Clear drops every entry in O(1), keeping the backing arrays for reuse.
func (m *Map[V]) Clear() {
	if m.stamp == nil || m.n == 0 && m.epoch != 0 {
		m.n = 0
		return
	}
	m.n = 0
	m.epoch++
	if m.epoch == 0 {
		// The 32-bit epoch wrapped (once per ~4 billion clears): reset the
		// stamps wholesale so stale stamps from old epochs cannot read as
		// live again.
		clear(m.stamp)
		m.epoch = 1
	}
	// Dead slots keep their old values until overwritten (Ref zeroes the
	// slot on insert, so they are never observable). That retention only
	// matters to the GC for pointer-valued V; every table in this codebase
	// holds scalars, and paying an O(cap) memset here would defeat the
	// point of epoch clearing.
}

// Keys appends every live key to dst in slot order (deterministic for a
// given history, not sorted) and returns the extended slice.
func (m *Map[V]) Keys(dst []uint64) []uint64 {
	for i := range m.keys {
		if m.stamp[i] == m.epoch {
			dst = append(dst, m.keys[i])
		}
	}
	return dst
}

// Range calls f for every live entry in slot order until f returns false.
// f must not insert into or delete from the map.
func (m *Map[V]) Range(f func(k uint64, v *V) bool) {
	for i := range m.keys {
		if m.stamp[i] == m.epoch {
			if !f(m.keys[i], &m.vals[i]) {
				return
			}
		}
	}
}

// Set is an open-addressed set of uint64 keys with the same properties as
// Map (epoch clearing, backward-shift delete, deterministic iteration).
// The zero value is ready to use.
type Set struct {
	m Map[struct{}]
}

// NewSet returns a set pre-sized for about capHint members.
func NewSet(capHint int) *Set {
	s := &Set{}
	s.m.init(capHint * 4 / 3)
	return s
}

// Len reports the number of members.
func (s *Set) Len() int { return s.m.Len() }

// Contains reports whether k is a member.
func (s *Set) Contains(k uint64) bool { return s.m.Contains(k) }

// Add inserts k, reporting whether it was newly added.
func (s *Set) Add(k uint64) bool {
	before := s.m.n
	s.m.Ref(k)
	return s.m.n != before
}

// Delete removes k, reporting whether it was present.
func (s *Set) Delete(k uint64) bool {
	_, ok := s.m.Delete(k)
	return ok
}

// Clear drops every member in O(1), keeping the backing arrays.
func (s *Set) Clear() { s.m.Clear() }

// Keys appends the members to dst in slot order and returns it.
func (s *Set) Keys(dst []uint64) []uint64 { return s.m.Keys(dst) }

// powerOfTwo is kept for the tests' capacity assertions.
func powerOfTwo(n int) bool { return n > 0 && bits.OnesCount(uint(n)) == 1 }
