module hoop

go 1.22
